(** Fixed-size domain pool for data-parallel loops.

    A pool owns [size - 1] worker domains (the calling domain is the
    remaining participant).  Work is distributed as index ranges claimed
    from a shared atomic cursor: a fixed width when the caller passes
    [~chunk], guided self-scheduling otherwise (each claim takes
    [remaining / (2 * domains)] indices, so early claims are large and
    tail claims shrink to singletons, keeping the domains balanced
    without a fixed granularity guess).  Every combinator writes results
    by index, so the output is identical whatever the domain count or
    scheduling — the whole pipeline relies on this for reproducibility.

    Worker-side failures are never swallowed: a job that lets an
    exception escape (a combinator bug — the combinators trap their own
    body exceptions) is counted on the [pool.worker_trap] metric and the
    exception is re-raised in the caller once the generation drains.

    The default pool is sized from the [PATCHECKO_DOMAINS] environment
    variable, falling back to [Domain.recommended_domain_count ()].  At
    size 1 (or when called from inside a pool job — nesting is safe)
    every combinator degrades to the plain sequential loop. *)

type t

val create : int -> t
(** [create n] builds a pool of [n] total domains ([n - 1] spawned
    workers).  [n] is clamped to at least 1. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent.  The pool must be idle. *)

val size : t -> int

val domain_count : unit -> int
(** Size the default pool has (or will have when first used). *)

val set_default_size : int -> unit
(** Replace the default pool with one of the given size (shutting down
    the old one).  Intended for benchmarks and tests that compare domain
    counts; must not be called while a parallel job is running. *)

val default : unit -> t
(** The lazily-created shared pool. *)

val parallel_for : ?pool:t -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for n body] runs [body i] for [0 <= i < n].  Iterations
    are claimed in index ranges from a shared cursor: fixed [chunk]
    indices at a time when given ([~chunk:1] for heavyweight bodies, a
    larger fixed width when the caller needs deterministic batch
    boundaries), adaptively sized otherwise.  The body must only write
    state disjoint per index.  The first exception raised by any
    iteration is re-raised after all workers stop. *)

val map_array : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; element order is preserved. *)

val map_array_result :
  ?pool:t ->
  ?chunk:int ->
  ('a -> 'b) ->
  'a array ->
  ('b, Robust.Fault.t) result array
(** Fault-isolating [map_array]: each item's escaped exception is
    captured as [Error] (classified by {!Robust.Fault.of_exn}) instead of
    re-raised, so one bad item costs one cell rather than the whole run.
    Also hosts the ["pool.worker"] injection site, keyed by item index.
    Element order is preserved; never raises from the body. *)

val map_reduce :
  ?pool:t ->
  ?chunk:int ->
  map:('a -> 'b) ->
  reduce:('b -> 'b -> 'b) ->
  'b ->
  'a array ->
  'b
(** [map_reduce ~map ~reduce zero arr] folds [reduce] over [map x] for
    every element.  [reduce] must be associative with identity [zero];
    per-chunk partials are combined in index order, so the result is
    deterministic. *)
