type t = {
  size : int;
  mutex : Mutex.t;
  work_cv : Condition.t;  (** a new job generation is available *)
  done_cv : Condition.t;  (** all workers finished the generation *)
  mutable job : (unit -> unit) option;
  mutable generation : int;
  mutable active : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  trap : exn option Atomic.t;
      (** first exception that escaped a worker's job this generation *)
}

(* Set while a domain executes a pool job: parallel combinators invoked
   from inside one run sequentially instead of deadlocking on the pool. *)
let in_job : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Observability: parallel generations dispatched, the default pool
   size, and exceptions that escaped a worker's job (jobs trap their
   own exceptions, so a worker trap is always a combinator bug — it is
   counted and re-raised to the caller, never swallowed).  [pool.jobs]
   is scheduling-dependent (a 1-domain pool never dispatches), so
   cross-domain-count golden comparisons exclude it. *)
let m_jobs = Obs.Metrics.counter "pool.jobs"
let m_domains = Obs.Metrics.gauge "pool.domains"
let m_trap = Obs.Metrics.counter "pool.worker_trap"

let worker t =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = !last do
      Condition.wait t.work_cv t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      last := t.generation;
      let job = match t.job with Some f -> f | None -> ignore in
      Mutex.unlock t.mutex;
      Domain.DLS.set in_job true;
      (* last-resort guard so a worker never dies and leaves [active]
         unbalanced; the escaped exception is recorded and re-raised in
         the caller once the generation completes *)
      (try job ()
       with e ->
         Obs.Metrics.incr m_trap;
         ignore (Atomic.compare_and_set t.trap None (Some e)));
      Domain.DLS.set in_job false;
      Mutex.lock t.mutex;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.done_cv;
      Mutex.unlock t.mutex
    end
  done

let create n =
  let size = max 1 n in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      job = None;
      generation = 0;
      active = 0;
      stop = false;
      workers = [];
      trap = Atomic.make None;
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

(* Publish [work] to every worker, run the caller's share, wait for all
   workers to finish the generation.  [work] must pull iterations from a
   shared cursor and must not raise; if it does anyway (on a worker),
   the exception is re-raised here in the caller. *)
let run_job t work =
  Obs.Metrics.incr m_jobs;
  Mutex.lock t.mutex;
  t.generation <- t.generation + 1;
  t.job <- Some work;
  t.active <- List.length t.workers;
  Atomic.set t.trap None;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mutex;
  Domain.DLS.set in_job true;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set in_job false;
      Mutex.lock t.mutex;
      while t.active > 0 do
        Condition.wait t.done_cv t.mutex
      done;
      t.job <- None;
      Mutex.unlock t.mutex)
    work;
  match Atomic.exchange t.trap None with Some e -> raise e | None -> ()

(* ------------------------------------------------------------------ *)
(* default pool                                                        *)

let env_size () =
  match Sys.getenv_opt "PATCHECKO_DOMAINS" with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some (min n 128)
    | Some _ | None -> None)

let default_size =
  ref
    (match env_size () with
    | Some n -> n
    | None -> Domain.recommended_domain_count ())

let default_pool : t option ref = ref None
let default_mutex = Mutex.create ()

let domain_count () = !default_size

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create !default_size in
      default_pool := Some p;
      Obs.Metrics.set m_domains !default_size;
      p
  in
  Mutex.unlock default_mutex;
  p

let set_default_size n =
  Mutex.lock default_mutex;
  (match !default_pool with Some p -> shutdown p | None -> ());
  default_pool := None;
  default_size := max 1 n;
  Obs.Metrics.set m_domains !default_size;
  Mutex.unlock default_mutex

let () =
  at_exit (fun () ->
      match !default_pool with Some p -> shutdown p | None -> ())

(* ------------------------------------------------------------------ *)
(* combinators                                                         *)

let resolve = function Some p -> p | None -> default ()

let default_chunk t n =
  (* a few chunks per domain so tail imbalance stays small *)
  max 1 ((n + (t.size * 4) - 1) / (t.size * 4))

let sequential_for n body =
  for i = 0 to n - 1 do
    body i
  done

(* Work distribution: domains claim index ranges from a shared atomic
   cursor.  With an explicit [~chunk] the ranges have that fixed width
   (callers that need a deterministic batch structure — e.g. the static
   stage's per-batch metrics — rely on this); without one the width
   adapts to the work remaining (guided self-scheduling: each claim
   takes [remaining / (2 * domains)] indices, so early claims are large
   and cheap to hand out while tail claims shrink to 1 and keep the
   domains balanced).  Either way every index is claimed exactly once,
   and results are written by index, so scheduling never shows in the
   output. *)
let parallel_for ?pool ?chunk n body =
  if n > 0 then begin
    let t = resolve pool in
    if t.size <= 1 || n = 1 || Domain.DLS.get in_job then sequential_for n body
    else begin
      let fixed = match chunk with Some c -> Some (max 1 c) | None -> None in
      let next = Atomic.make 0 in
      let error = Atomic.make None in
      let rec claim () =
        let cur = Atomic.get next in
        if cur >= n then None
        else begin
          let remaining = n - cur in
          let step =
            match fixed with
            | Some c -> min c remaining
            | None -> max 1 (min remaining (remaining / (2 * t.size)))
          in
          if Atomic.compare_and_set next cur (cur + step) then
            Some (cur, cur + step)
          else claim ()
        end
      in
      let work () =
        let running = ref true in
        while !running do
          if Option.is_some (Atomic.get error) then running := false
          else
            match claim () with
            | None -> running := false
            | Some (lo, hi) -> (
              try
                for i = lo to hi - 1 do
                  body i
                done
              with e -> ignore (Atomic.compare_and_set error None (Some e)))
        done
      in
      run_job t work;
      match Atomic.get error with Some e -> raise e | None -> ()
    end
  end

let map_array ?pool ?chunk f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (* seed the result array with element 0, computed by the caller *)
    let out = Array.make n (f arr.(0)) in
    parallel_for ?pool ?chunk (n - 1) (fun i -> out.(i + 1) <- f arr.(i + 1));
    out
  end

(* Like [map_array], but each item's outcome is captured as a [result]
   instead of the first exception aborting the whole generation: one bad
   input costs one cell, not the scan.  The "pool.worker" injection site
   lives here, keyed by item index (context-free, so the draw only
   depends on the item, never on scheduling). *)
let map_array_result ?pool ?chunk f arr =
  let item i x =
    match
      Robust.Inject.fire ~site:"pool.worker" ~key:(string_of_int i) ()
    with
    | Some _ ->
      Error
        (Robust.Fault.Worker_crash
           {
             site = "pool.worker";
             detail = Printf.sprintf "injected worker crash on item %d" i;
           })
    | None -> (
      try Ok (f x) with e -> Error (Robust.Fault.of_exn ~site:"pool.worker" e))
  in
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n (item 0 arr.(0)) in
    parallel_for ?pool ?chunk (n - 1) (fun i -> out.(i + 1) <- item (i + 1) arr.(i + 1));
    out
  end

let map_reduce ?pool ?chunk ~map ~reduce zero arr =
  let n = Array.length arr in
  if n = 0 then zero
  else begin
    let t = resolve pool in
    let chunk =
      match chunk with Some c -> max 1 c | None -> default_chunk t n
    in
    let nchunks = (n + chunk - 1) / chunk in
    let partial = Array.make nchunks zero in
    parallel_for ?pool ~chunk:1 nchunks (fun c ->
        let lo = c * chunk in
        let hi = min n (lo + chunk) in
        let acc = ref zero in
        for i = lo to hi - 1 do
          acc := reduce !acc (map arr.(i))
        done;
        partial.(c) <- !acc);
    Array.fold_left reduce zero partial
  end
