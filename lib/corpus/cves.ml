open Build_ast
open Minic.Ast

type t = {
  id : string;
  family : string;
  host_library : int;
  fname : string;
  seed : int64;
  shape : Fuzz.Shape.t;
  description : string;
  pad : int;
}

let buf_shape : Fuzz.Shape.t = [ Abuf 48; Alen ]

(* --- family 1: the paper's case study ----------------------------------
   ID3::removeUnsynchronization.  The vulnerable version memmoves the
   tail of the buffer for every 0xff 0x00 pair; the patch rewrites it as
   a single read/write pass and adds a final size check. *)
let remove_unsync _rng ~fname ~patched =
  if not patched then
    fn fname
      [ ("data", Tptr Byte); ("size", Tint) ]
      Tint
      [
        let_ "msize" Tint (v "size");
        let_ "k" Tint (i 0);
        while_
          (v "k" +: i 1 <: v "msize")
          [
            if_
              ((idx (v "data") (v "k") =: i 255)
              &&: (idx (v "data") (v "k" +: i 1) =: i 0))
              [
                expr
                  (call "memmove"
                     [
                       addr (v "data") (v "k" +: i 1);
                       addr (v "data") (v "k" +: i 2);
                       v "msize" -: v "k" -: i 2;
                     ]);
                set "msize" (v "msize" -: i 1);
              ];
            set "k" (v "k" +: i 1);
          ];
        ret (v "msize");
      ]
  else
    fn fname
      [ ("data", Tptr Byte); ("size", Tint) ]
      Tint
      [
        let_ "msize" Tint (v "size");
        let_ "woff" Tint (i 1);
        if_ (v "msize" =: i 0) [ ret (i 0) ];
        for_ "roff" (i 1) (v "msize")
          [
            ifelse
              ((idx (v "data") (v "roff" -: i 1) =: i 255)
              &&: (idx (v "data") (v "roff") =: i 0))
              [ Scontinue ]
              [
                setidx (v "data") (v "woff") (idx (v "data") (v "roff"));
                set "woff" (v "woff" +: i 1);
              ];
          ];
        if_ (v "woff" <: v "msize") [ set "msize" (v "woff") ];
        ret (v "msize");
      ]

(* --- family 2: missing bounds check on a stack buffer ------------------ *)
let missing_bounds rng ~fname ~patched =
  let cap = Util.Prng.choose rng [| 24; 32; 40 |] in
  let mult = Util.Prng.int_in rng 3 11 in
  let guard = if patched then [ if_ (v "n" >: i cap) [ set "n" (i cap) ] ] else [] in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    ([ letbuf "stage" Byte cap; let_ "n" Tint (v "len") ]
    @ guard
    @ [
        for_ "k" (i 0) (v "n")
          [ setidx (v "stage") (v "k") ((idx (v "data") (v "k") *: i mult) %: i 251) ];
        let_ "acc" Tint (i 0);
        for_ "k" (i 0) (v "n") [ set "acc" (v "acc" +: idx (v "stage") (v "k")) ];
        ret (v "acc");
      ])

(* --- family 3: off-by-one loop bound ----------------------------------- *)
let off_by_one rng ~fname ~patched =
  let weight = Util.Prng.int_in rng 2 17 in
  let bound = if patched then v "len" else v "len" +: i 1 in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "acc" Tint (i 0);
      let_ "k" Tint (i 0);
      while_
        (v "k" <: bound)
        [
          set "acc" (v "acc" +: (idx (v "data") (v "k") *: i weight));
          set "k" (v "k" +: i 1);
        ];
      ret (v "acc" %: i 65521);
    ]

(* --- family 4: unchecked divisor --------------------------------------- *)
let div_guard rng ~fname ~patched =
  let base = Util.Prng.int_in rng 100 999 in
  let divisor = idx (v "data") (i 0) %: i 16 in
  let body_tail =
    [
      let_ "q" Tint ((v "total" +: i base) /: v "d");
      ret (v "q");
    ]
  in
  let guard =
    if patched then [ if_ (v "d" =: i 0) [ ret (i 0 -: i 1) ] ] else []
  in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    ([
       if_ (v "len" <: i 1) [ ret (i 0 -: i 1) ];
       let_ "total" Tint (i 0);
       for_ "k" (i 0) (v "len") [ set "total" (v "total" +: idx (v "data") (v "k")) ];
       let_ "d" Tint divisor;
     ]
    @ guard @ body_tail)

(* --- family 5: unchecked TLV record length ----------------------------- *)
let unchecked_length rng ~fname ~patched =
  let cap = Util.Prng.choose rng [| 32; 48 |] in
  let guard =
    if patched then
      [ if_ (v "tlen" >: v "len" -: v "pos") [ ret (i 0 -: i 1) ] ]
    else []
  in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      letbuf "payload" Byte cap;
      let_ "pos" Tint (i 0);
      let_ "out" Tint (i 0);
      while_
        (v "pos" +: i 1 <: v "len")
        ([
           let_ "tlen" Tint (idx (v "data") (v "pos") %: i cap);
           set "pos" (v "pos" +: i 1);
         ]
        @ guard
        @ [
            for_ "j" (i 0) (v "tlen")
              [
                if_
                  (v "pos" +: v "j" <: v "len")
                  [ setidx (v "payload") (v "j") (idx (v "data") (v "pos" +: v "j")) ];
              ];
            for_ "j" (i 0) (v "tlen") [ set "out" (v "out" ^: idx (v "payload") (v "j")) ];
            set "pos" (v "pos" +: v "tlen" +: i 1);
          ]);
      ret (v "out");
    ]

(* --- family 6: missing increment (DoS / infinite loop) ------------------ *)
let missing_increment rng ~fname ~patched =
  let marker = 255 in
  let bias = Util.Prng.int_in rng 0 9 in
  let vulnerable_body =
    [
      (* on a marker byte the cursor is not advanced: loops forever *)
      ifelse
        (idx (v "data") (v "k") =: i marker)
        [ set "acc" (v "acc" +: i 1) ]
        [
          set "acc" (v "acc" +: idx (v "data") (v "k"));
          set "k" (v "k" +: i 1);
        ];
    ]
  in
  let patched_body =
    [
      ifelse
        (idx (v "data") (v "k") =: i marker)
        [ set "acc" (v "acc" +: i 1) ]
        [ set "acc" (v "acc" +: idx (v "data") (v "k")) ];
      set "k" (v "k" +: i 1);
    ]
  in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    [
      let_ "acc" Tint (i bias);
      let_ "k" Tint (i 0);
      while_ (v "k" <: v "len") (if patched then patched_body else vulnerable_body);
      ret (v "acc");
    ]

(* --- family 7: single-constant patch (the paper's CVE-2018-9470 miss) -- *)
let int_clamp rng ~fname ~patched =
  let mult = Util.Prng.int_in rng 2 6 in
  let limit = if patched then 1024 else 4096 in
  fn fname
    [ ("x", Tint); ("y", Tint) ]
    Tint
    [
      let_ "t" Tint ((v "x" *: i mult) +: v "y");
      if_ (v "t" >: i limit) [ set "t" (i limit) ];
      ret (v "t" ^: (v "t" >>: i 3));
    ]

(* --- family 8: missing zero-length guard before a division ------------- *)
let null_check rng ~fname ~patched =
  let bias = Util.Prng.int_in rng 1 31 in
  let guard = if patched then [ if_ (v "len" =: i 0) [ ret (i 0 -: i 1) ] ] else [] in
  fn fname
    [ ("data", Tptr Byte); ("len", Tint) ]
    Tint
    (guard
    @ [
        let_ "total" Tint (i bias);
        for_ "k" (i 0) (v "len") [ set "total" (v "total" +: idx (v "data") (v "k")) ];
        ret (v "total" /: v "len");
      ])

let families =
  [
    ("remove_unsync", remove_unsync);
    ("missing_bounds", missing_bounds);
    ("off_by_one", off_by_one);
    ("div_guard", div_guard);
    ("unchecked_length", unchecked_length);
    ("missing_increment", missing_increment);
    ("int_clamp", int_clamp);
    ("null_check", null_check);
  ]

(* Table VI order.  Family assignment keeps the two paper-pinned cases
   (9412 = the case study, 9470 = the one-integer patch) and cycles the
   rest. *)
let specs =
  [
    ("CVE-2018-9451", "missing_bounds");
    ("CVE-2018-9340", "unchecked_length");
    ("CVE-2017-13232", "off_by_one");
    ("CVE-2018-9345", "div_guard");
    ("CVE-2018-9420", "null_check");
    ("CVE-2017-13210", "missing_bounds");
    ("CVE-2018-9470", "int_clamp");
    ("CVE-2017-13209", "unchecked_length");
    ("CVE-2018-9411", "off_by_one");
    ("CVE-2017-13252", "div_guard");
    ("CVE-2017-13253", "null_check");
    ("CVE-2018-9499", "missing_increment");
    ("CVE-2018-9424", "missing_bounds");
    ("CVE-2018-9491", "unchecked_length");
    ("CVE-2017-13278", "off_by_one");
    ("CVE-2018-9410", "div_guard");
    ("CVE-2017-13208", "null_check");
    ("CVE-2018-9498", "missing_increment");
    ("CVE-2017-13279", "missing_bounds");
    ("CVE-2018-9440", "unchecked_length");
    ("CVE-2018-9427", "off_by_one");
    ("CVE-2017-13178", "div_guard");
    ("CVE-2017-13180", "null_check");
    ("CVE-2018-9412", "remove_unsync");
    ("CVE-2017-13182", "missing_increment");
  ]

let shape_of_family family =
  match family with
  | "int_clamp" -> ([ Fuzz.Shape.Aint (0L, 2000L); Aint (0L, 500L) ] : Fuzz.Shape.t)
  | _ -> buf_shape

let description_of_family = function
  | "remove_unsync" -> "ID3 unsynchronisation removal DoS (memmove loop)"
  | "missing_bounds" -> "stack buffer write without length clamp"
  | "off_by_one" -> "loop reads one byte past the buffer"
  | "div_guard" -> "attacker-controlled divisor unchecked"
  | "unchecked_length" -> "TLV record length not validated against input size"
  | "missing_increment" -> "cursor not advanced on marker byte (infinite loop DoS)"
  | "int_clamp" -> "incorrect clamp constant (patch changes one integer)"
  | "null_check" -> "missing zero-length guard before division"
  | f -> f

let all =
  List.mapi
    (fun k (id, family) ->
      {
        id;
        family;
        host_library = k mod 5;
        fname = "cve_" ^ String.map (fun c -> if c = '-' then '_' else c) id;
        seed = Int64.of_int (0x5EED + (k * 7919));
        shape = shape_of_family family;
        description = description_of_family family;
        pad = 0;
      })
    specs

let find id = List.find_opt (fun c -> c.id = id) all

(* Synthetic extra entries for scale experiments: cycle the patch
   families with fresh seeds (a different base and multiplier than
   [all], so no generated pair collides with a Table VI pair).  The
   memmove case study is excluded — its import-call fingerprint is
   library-specific, not seed-derived, so reseeded copies would be near
   duplicates. *)
let synthetic_families =
  List.filter (fun (name, _) -> name <> "remove_unsync") families

let synthetic ?(salt = 0) ?(structural = false) ~count () =
  List.init count (fun k ->
      let family, _ = List.nth synthetic_families (k mod List.length synthetic_families) in
      {
        id = Printf.sprintf "CVE-GEN-%04d" (salt + k);
        family;
        host_library = k mod 5;
        fname = Printf.sprintf "cve_gen_%d" (salt + k);
        seed = Int64.of_int (0x6EED + ((salt + k) * 6211));
        shape = shape_of_family family;
        description = description_of_family family;
        pad = (if structural then 1 + salt + k else 0);
      })

(* Structural padding for scale-benchmark entries ([pad] > 0): a
   rng-derived preprocessing prologue prepended to both sides of the
   pair, its accumulator folded into every return value.  Real
   vulnerability databases span many codebases, so most entries share no
   control structure with any function of a given firmware; padding
   models that — the padded skeleton (and its loop profile and runtime
   behaviour) diverges from the bare family function, so the index can
   prune the entry from images that only carry unrelated code.  Both
   sides get the identical prologue, keeping the vuln/patched diff
   exactly the family's minimal patch.  Loop bounds stay above the
   compiler's unroll limit so the padded skeleton is stable across every
   signature build configuration. *)
let pad_prologue rng =
  let cap = Util.Prng.choose rng [| 12; 16; 20; 24 |] in
  let mult = Util.Prng.int_in rng 3 11 in
  let bias = Util.Prng.int_in rng 1 97 in
  let cell k = ((k *: i mult) +: i bias) %: i 251 in
  let bump j e =
    setidx (v "pad_buf") j ((idx (v "pad_buf") j +: e) %: i 251)
  in
  (* One padding pass per rng draw, from an alphabet of control
     arrangements (flat loop, guarded loop, nested loops, branch over
     loops, ...).  The skeleton fingerprint keeps only control nodes,
     so what distinguishes one padded entry from another — and from
     every firmware function — is this rng-derived arrangement
     sequence, not the arithmetic inside it.  A sequence of flat loops
     alone would collapse to the ubiquitous "k sequential loops"
     skeleton that unrelated firmware functions also have, so the first
     pass is always drawn from the nested/branching shapes.  Branch
     conditions read the buffer rather than induction variables or
     literals, so no configuration can fold a branch away and perturb
     the skeleton. *)
  let pass ~nested k =
    let kv = Printf.sprintf "pad_k%d" k and jv = Printf.sprintf "pad_j%d" k in
    match (if nested then 1 + Util.Prng.int rng 4 else Util.Prng.int rng 6) with
    | 0 ->
      (* flat mixing loop *)
      [ for_ kv (i 0) (i cap) [ bump (v kv) (cell (v kv)) ] ]
    | 1 ->
      (* loop(cond): data-guarded bump *)
      [
        for_ kv (i 0) (i cap)
          [
            if_
              ((idx (v "pad_buf") (v kv) %: i 2) =: i 1)
              [ bump (v kv) (i 1) ];
          ];
      ]
    | 2 ->
      (* loop(loop): triangular smoothing *)
      [
        for_ kv (i 0) (i cap)
          [
            bump (v kv) (cell (v kv));
            for_ jv (i 0) (v kv) [ bump (v jv) (i 1) ];
          ];
      ]
    | 3 ->
      (* loop(loop(cond)): nested guarded smoothing *)
      [
        for_ kv (i 0) (i cap)
          [
            for_ jv (i 0) (v kv)
              [
                if_
                  ((idx (v "pad_buf") (v jv) %: i 3) =: i 0)
                  [ bump (v jv) (i 2) ];
              ];
          ];
      ]
    | 4 ->
      (* cond(loop, loop): data-dependent pass choice *)
      [
        ifelse
          ((idx (v "pad_buf") (i 0) %: i 2) =: i 0)
          [ for_ kv (i 0) (i cap) [ bump (v kv) (cell (v kv)) ] ]
          [ for_ kv (i 0) (i cap) [ bump (v kv) (i 3) ] ];
      ]
    | _ ->
      (* two sequential flat passes *)
      [
        for_ kv (i 0) (i cap) [ bump (v kv) (cell (v kv)) ];
        for_ jv (i 0) (i cap) [ bump (v jv) (i 5) ];
      ]
  in
  let npasses = Util.Prng.int_in rng 2 4 in
  let rec passes k acc =
    if k >= npasses then List.concat (List.rev acc)
    else passes (k + 1) (pass ~nested:(k = 0) k :: acc)
  in
  [
    letbuf "pad_buf" Byte cap;
    let_ "pad_acc" Tint (i 0);
    for_ "pad_k" (i 0) (i cap)
      [ setidx (v "pad_buf") (v "pad_k") (cell (v "pad_k")) ];
  ]
  @ passes 0 []
  @ [
      for_ "pad_k" (i 0) (i cap)
        [ set "pad_acc" (v "pad_acc" +: idx (v "pad_buf") (v "pad_k")) ];
    ]

let rec mix_return s =
  match s with
  | Sreturn (Some e) -> Sreturn (Some (e +: v "pad_acc"))
  | Sif (c, a, b) -> Sif (c, List.map mix_return a, List.map mix_return b)
  | Swhile (c, b) -> Swhile (c, List.map mix_return b)
  | Sfor (x, e0, e1, e2, b) -> Sfor (x, e0, e1, e2, List.map mix_return b)
  | Sswitch (e, cases, d) ->
    Sswitch
      ( e,
        List.map (fun (k, b) -> (k, List.map mix_return b)) cases,
        List.map mix_return d )
  | Sreturn None | Sdecl _ | Sarray _ | Sassign _ | Sindexset _ | Sbreak
  | Scontinue | Sexpr _ ->
    s

let func c ~patched =
  let maker = List.assoc c.family families in
  let rng = Util.Prng.create c.seed in
  let f = maker rng ~fname:c.fname ~patched in
  if c.pad = 0 then f
  else
    let prng =
      Util.Prng.create
        (Int64.logxor c.seed (Int64.of_int (0x9AD0000 + (c.pad * 131))))
    in
    { f with body = pad_prologue prng @ List.map mix_return f.body }

let vulnerable_func c = func c ~patched:false
let patched_func c = func c ~patched:true
