(** The 25 synthetic CVEs, reusing the paper's CVE identifiers (Table VI).

    Each CVE is a (vulnerable, patched) pair of MinC functions generated
    from one of eight patch families — the patch is a minimal semantic
    change (bounds check added, memmove loop rewritten, missing increment
    restored, a single constant changed, ...), with all other
    rng-derived constants shared, so the pair differs exactly the way a
    real security patch differs.  CVE-2018-9412 is a faithful port of the
    paper's ID3 removeUnsynchronization case study; CVE-2018-9470's patch
    changes one integer — the case the paper's differential engine
    misclassifies. *)

type t = {
  id : string;
  family : string;
  host_library : int;  (** which corpus library carries this function *)
  fname : string;
  seed : int64;  (** shared constants of the pair derive from this *)
  shape : Fuzz.Shape.t;
  description : string;
  pad : int;
      (** 0 for the Table VI corpus.  Non-zero selects a rng-derived
          structural prologue prepended to both sides of the pair —
          scale-benchmark entries standing in for CVEs from unrelated
          codebases, whose control skeleton matches no function of the
          scanned firmware. *)
}

val all : t list
(** 25 entries, in the paper's Table VI order. *)

val find : string -> t option

(** [synthetic ~count ()] generates [count] extra entries (ids
    [CVE-GEN-%04d], offset by [salt]) cycling the seed-derived patch
    families with seeds disjoint from {!all} — used to enlarge the
    vulnerability database for index scale benchmarks.  With
    [~structural:true] each entry also gets a distinct rng-derived
    structural prologue (see {!type-t.pad}), modelling database entries
    from codebases the firmware does not contain. *)
val synthetic : ?salt:int -> ?structural:bool -> count:int -> unit -> t list
val vulnerable_func : t -> Minic.Ast.func
val patched_func : t -> Minic.Ast.func
val func : t -> patched:bool -> Minic.Ast.func
