(** Dataset builders.

    Dataset I (training): libraries compiled for every (architecture,
    optimisation) combination; similar pairs are the same function under
    two different configurations, dissimilar pairs are two different
    functions.  Pair vectors are the concatenation of the two 48-feature
    static vectors (96 inputs), labels 1/0.

    Dataset II (vulnerability database sources): one small image per CVE
    containing just the vulnerable or patched function, compiled at the
    database reference configuration. *)

type config = {
  nlibs : int;
  nfuncs : int;
  archs : Isa.Arch.t list;
  opts : Minic.Optlevel.level list;
  pairs_per_function : int;
  seed : int64;
}

val default_config : config
val small_config : config
(** Reduced size for tests and quick runs. *)

val build_pairs : config -> Nn.Data.t
(** Dataset I: balanced similar/dissimilar pairs. *)

val db_arch : Isa.Arch.t
val db_opt : Minic.Optlevel.level

val compile_cve :
  ?arch:Isa.Arch.t -> ?opt:Minic.Optlevel.level -> Cves.t -> patched:bool
  -> Loader.Image.t
(** Single-CVE reference image (function 0 is the CVE function); keeps
    its symtab — the database legitimately knows its own functions. *)

val signature_configs : (Isa.Arch.t * Minic.Optlevel.level) list
(** Extra build configurations diff signatures are extracted over: the
    optimisation sweep O0–Ofast at {!db_arch} plus every architecture at
    O2, minus the ({!db_arch}, {!db_opt}) reference build itself. *)

val signature_builds : Cves.t -> patched:bool -> (Loader.Image.t * int) list
(** One {!compile_cve} image (function 0) per {!signature_configs}
    entry, ready for {!Patchecko.Vulndb.make_entry}'s [?builds]. *)
