type config = {
  nlibs : int;
  nfuncs : int;
  archs : Isa.Arch.t list;
  opts : Minic.Optlevel.level list;
  pairs_per_function : int;
  seed : int64;
}

let default_config =
  {
    nlibs = 24;
    nfuncs = 26;
    archs = Isa.Arch.all;
    opts = Minic.Optlevel.all;
    pairs_per_function = 6;
    seed = 0xDA7AL;
  }

let small_config =
  {
    nlibs = 4;
    nfuncs = 12;
    archs = Isa.Arch.[ X86; Arm64 ];
    opts = Minic.Optlevel.[ O1; O2 ];
    pairs_per_function = 2;
    seed = 0xDA7AL;
  }

(* The database reference build: a different architecture and a lower
   optimisation level than any device firmware, so every lookup crosses
   configurations.  The build-gap sensitivity is quantified by the
   db-build ablation (dynamic profiles degrade as the gap widens — see
   EXPERIMENTS.md). *)
let db_arch = Isa.Arch.Arm64
let db_opt = Minic.Optlevel.O1

(* features.(lib).(config).(findex); function indices are identical across
   configurations of the same library because the compiler preserves
   function order. *)
let extract_all config =
  List.init config.nlibs (fun idx ->
      let prog = Genlib.generate ~seed:config.seed ~index:idx ~nfuncs:config.nfuncs in
      let images =
        Minic.Compiler.compile_matrix ~archs:config.archs ~opts:config.opts prog
      in
      List.map
        (fun (_cfg, img) ->
          Staticfeat.Extract.of_image (Loader.Image.strip img))
        images)

let build_pairs config =
  let rng = Util.Prng.create config.seed in
  let libs = Array.of_list (List.map Array.of_list (extract_all config)) in
  let pairs = ref [] in
  let nconfigs lib = Array.length libs.(lib) in
  let nfuncs lib = Array.length libs.(lib).(0) in
  let random_other rng lib fidx =
    let rec draw () =
      let l = Util.Prng.int rng (Array.length libs) in
      let f = Util.Prng.int rng (nfuncs l) in
      if l = lib && f = fidx then draw () else (l, f)
    in
    draw ()
  in
  Array.iteri
    (fun lib configs ->
      let nf = nfuncs lib in
      for fidx = 0 to nf - 1 do
        for _ = 1 to config.pairs_per_function do
          (* similar: same function, two distinct configurations *)
          let c1 = Util.Prng.int rng (nconfigs lib) in
          let c2 =
            let rec draw () =
              let c = Util.Prng.int rng (nconfigs lib) in
              if c = c1 && nconfigs lib > 1 then draw () else c
            in
            draw ()
          in
          let fa = configs.(c1).(fidx) and fb = configs.(c2).(fidx) in
          pairs := (Util.Vec.concat fa fb, 1.0) :: !pairs;
          (* dissimilar: a different function somewhere in the corpus *)
          let l2, f2 = random_other rng lib fidx in
          let c3 = Util.Prng.int rng (nconfigs l2) in
          let fc = libs.(l2).(c3).(f2) in
          pairs := (Util.Vec.concat fa fc, 0.0) :: !pairs
        done
      done)
    libs;
  let arr = Array.of_list !pairs in
  Util.Prng.shuffle rng arr;
  Nn.Data.make (Array.to_list arr)

(* Build configurations for diff-signature extraction: the whole
   optimisation sweep at the database architecture plus every
   architecture at O2 — both variance axes the anchor tokens must
   survive (the device builds, Arm32/O2 and Arm64/Ofast, are covered).
   The base (db_arch, db_opt) pair is excluded: signature extraction
   always folds the reference build in by itself. *)
let signature_configs =
  List.filter_map
    (fun opt ->
      if opt = db_opt then None else Some (db_arch, opt))
    Minic.Optlevel.all
  @ List.filter_map
      (fun arch ->
        if arch = db_arch then None (* already in the opt sweep *)
        else Some (arch, Minic.Optlevel.O2))
      Isa.Arch.all

let compile_cve ?(arch = db_arch) ?(opt = db_opt) (cve : Cves.t) ~patched =
  let prog =
    {
      Minic.Ast.pname = "cvedb_" ^ cve.fname;
      globals = [];
      funcs = [ Cves.func cve ~patched ];
    }
  in
  Minic.Compiler.compile ~arch ~opt prog

let signature_builds (cve : Cves.t) ~patched =
  List.map
    (fun (arch, opt) -> (compile_cve ~arch ~opt cve ~patched, 0))
    signature_configs
