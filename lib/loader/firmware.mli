(** A firmware image: a named device with an OS version, a security-patch
    level, and a set of library images (the analog of the paper's
    Android Things 1.0 and Google Pixel 2 XL targets). *)

type t = {
  device : string;
  os_version : string;
  security_patch : string;  (** e.g. "2018-05" *)
  images : Image.t array;
}

val find_image : t -> string -> Image.t option
val total_functions : t -> int
val strip : t -> t
val to_bytes : t -> bytes
val of_bytes : bytes -> t
(** Raises {!Sff.Corrupt}. *)

val of_bytes_result : bytes -> (t, Robust.Fault.t) result
(** Fault-typed decode boundary: never raises. *)

val write : string -> t -> unit
val read : string -> t

val read_result : string -> (t, Robust.Fault.t) result
(** Fault-typed read: I/O and decode failures come back as
    [Error (Malformed_image _)] instead of an exception. *)
