(** Binary serialisation of SFF images and firmware containers.

    Wire format (little-endian throughout):
    - image: magic "SFF1", arch tag, call table, data section, string
      ranges, function bodies, optional symbol table;
    - firmware: magic "SFW1", device metadata, images.

    Round-tripping is exact, including the stripped/unstripped distinction,
    so the evaluation can store compiled firmware on disk as the paper
    stores vendor images. *)

exception Corrupt of string

val image_to_bytes : Image.t -> bytes
val image_of_bytes : bytes -> Image.t
(** Raises {!Corrupt}.  Element counts are validated against the bytes
    remaining, so corrupted headers fail cleanly rather than allocating.
    Hosts the ["loader.decode"] fault-injection site (keyed by image
    name), which raises {!Robust.Fault.Fault} when armed. *)

val image_of_bytes_result : bytes -> (Image.t, Robust.Fault.t) result
(** Fault-typed decode boundary: never raises.  Truncated or corrupted
    bytes yield [Error (Malformed_image _)]; injected faults keep their
    own constructor. *)

val write_image : string -> Image.t -> unit
val read_image : string -> Image.t
