exception Corrupt of string

let fail fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let image_magic = "SFF1"

(* --- writers --------------------------------------------------------- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u32 buf v =
  for i = 0 to 3 do
    put_u8 buf ((v lsr (8 * i)) land 0xff)
  done

let put_u64 buf v =
  for i = 0 to 7 do
    put_u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_bytes buf b =
  put_u32 buf (Bytes.length b);
  Buffer.add_bytes buf b

(* --- readers --------------------------------------------------------- *)

type cursor = { data : bytes; mutable pos : int }

let get_u8 c =
  if c.pos >= Bytes.length c.data then fail "truncated at %d" c.pos;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  let v = ref 0 in
  for i = 0 to 3 do
    v := !v lor (get_u8 c lsl (8 * i))
  done;
  !v

let get_u64 c =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (get_u8 c)) (8 * i))
  done;
  !v

let get_str c =
  let len = get_u32 c in
  if c.pos + len > Bytes.length c.data then fail "truncated string at %d" c.pos;
  let s = Bytes.sub_string c.data c.pos len in
  c.pos <- c.pos + len;
  s

let get_bytes c =
  let len = get_u32 c in
  if c.pos + len > Bytes.length c.data then fail "truncated bytes at %d" c.pos;
  let b = Bytes.sub c.data c.pos len in
  c.pos <- c.pos + len;
  b

(* Element counts are attacker-controlled: cap them against the bytes
   actually remaining (each element costs at least [min_bytes]) so a
   corrupted count field fails cleanly instead of attempting a
   multi-gigabyte allocation. *)
let get_count c ~min_bytes ~what =
  let n = get_u32 c in
  let remaining = Bytes.length c.data - c.pos in
  if n * min_bytes > remaining then
    fail "implausible %s count %d at %d (%d bytes remain)" what n c.pos
      remaining;
  n

(* --- image ----------------------------------------------------------- *)

let arch_tag = function
  | Isa.Arch.X86 -> 0
  | Isa.Arch.Amd64 -> 1
  | Isa.Arch.Arm32 -> 2
  | Isa.Arch.Arm64 -> 3

let arch_of_tag = function
  | 0 -> Isa.Arch.X86
  | 1 -> Isa.Arch.Amd64
  | 2 -> Isa.Arch.Arm32
  | 3 -> Isa.Arch.Arm64
  | t -> fail "bad arch tag %d" t

let put_call buf = function
  | Image.Internal i ->
    put_u8 buf 0;
    put_u32 buf i
  | Image.Import name ->
    put_u8 buf 1;
    put_str buf name

let get_call c =
  match get_u8 c with
  | 0 -> Image.Internal (get_u32 c)
  | 1 -> Image.Import (get_str c)
  | t -> fail "bad call tag %d" t

let put_symtab buf (sym : Symtab.t) =
  put_u32 buf (Array.length sym.functions);
  Array.iter (put_str buf) sym.functions;
  put_u32 buf (Array.length sym.globals);
  Array.iter
    (fun (name, addr) ->
      put_str buf name;
      put_u64 buf addr)
    sym.globals

let get_symtab c : Symtab.t =
  let nfun = get_count c ~min_bytes:4 ~what:"symtab function" in
  let functions = Array.init nfun (fun _ -> get_str c) in
  let nglob = get_count c ~min_bytes:12 ~what:"symtab global" in
  let globals =
    Array.init nglob (fun _ ->
        let name = get_str c in
        let addr = get_u64 c in
        (name, addr))
  in
  { functions; globals }

let image_to_bytes (img : Image.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf image_magic;
  put_str buf img.name;
  put_u8 buf (arch_tag img.arch);
  put_u64 buf img.data_base;
  put_bytes buf img.data;
  put_u32 buf (Array.length img.strings);
  Array.iter
    (fun (addr, len) ->
      put_u64 buf addr;
      put_u32 buf len)
    img.strings;
  put_u32 buf (Array.length img.calls);
  Array.iter (put_call buf) img.calls;
  put_u32 buf (Array.length img.functions);
  Array.iter (put_bytes buf) img.functions;
  (match img.symtab with
  | None -> put_u8 buf 0
  | Some sym ->
    put_u8 buf 1;
    put_symtab buf sym);
  Buffer.to_bytes buf

let image_of_cursor c : Image.t =
  if c.pos + 4 > Bytes.length c.data then fail "too short";
  let magic = Bytes.sub_string c.data c.pos 4 in
  if magic <> image_magic then fail "bad image magic %S" magic;
  c.pos <- c.pos + 4;
  let name = get_str c in
  (* "loader.decode" injection site: a chaos run can make any image's
     decode fault deterministically, keyed by its name *)
  (match Robust.Inject.fire ~site:"loader.decode" ~key:name () with
  | Some _ ->
    raise
      (Robust.Fault.Fault
         (Robust.Fault.Decode_error
            { site = "loader.decode"; detail = "injected decode fault in " ^ name }))
  | None -> ());
  let arch = arch_of_tag (get_u8 c) in
  let data_base = get_u64 c in
  let data = get_bytes c in
  let nstr = get_count c ~min_bytes:12 ~what:"string range" in
  let strings =
    Array.init nstr (fun _ ->
        let addr = get_u64 c in
        let len = get_u32 c in
        (addr, len))
  in
  let ncall = get_count c ~min_bytes:5 ~what:"call" in
  let calls = Array.init ncall (fun _ -> get_call c) in
  let nfun = get_count c ~min_bytes:4 ~what:"function" in
  let functions = Array.init nfun (fun _ -> get_bytes c) in
  let symtab = match get_u8 c with 0 -> None | _ -> Some (get_symtab c) in
  { name; arch; functions; calls; data; data_base; strings; symtab }

let image_of_bytes b =
  if Bytes.length b < 4 then fail "too short";
  image_of_cursor { data = b; pos = 0 }

(* The fault-typed boundary: truncated/corrupted bytes (and any decoder
   escape) come back as [Error (Malformed_image _)], never an exception;
   injected decode faults keep their own constructor. *)
let image_of_bytes_result b =
  match image_of_bytes b with
  | img -> Ok img
  | exception Corrupt msg ->
    Error (Robust.Fault.Malformed_image { site = "loader.decode"; detail = msg })
  | exception Robust.Fault.Fault f -> Error f
  | exception e ->
    Error
      (Robust.Fault.Malformed_image
         { site = "loader.decode"; detail = Printexc.to_string e })

let write_image path img =
  let oc = open_out_bin path in
  (try output_bytes oc (image_to_bytes img)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let read_image path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  (try really_input ic b 0 len
   with e ->
     close_in_noerr ic;
     raise e);
  close_in ic;
  image_of_bytes b
