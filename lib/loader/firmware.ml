type t = {
  device : string;
  os_version : string;
  security_patch : string;
  images : Image.t array;
}

let firmware_magic = "SFW1"

let find_image t name =
  let found = ref None in
  Array.iter
    (fun img -> if img.Image.name = name && !found = None then found := Some img)
    t.images;
  !found

let total_functions t =
  Array.fold_left (fun acc img -> acc + Image.function_count img) 0 t.images

let strip t = { t with images = Array.map Image.strip t.images }

let to_bytes t =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf firmware_magic;
  let put_str s =
    let len = String.length s in
    for i = 0 to 3 do
      Buffer.add_char buf (Char.chr ((len lsr (8 * i)) land 0xff))
    done;
    Buffer.add_string buf s
  in
  put_str t.device;
  put_str t.os_version;
  put_str t.security_patch;
  let n = Array.length t.images in
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
  done;
  Array.iter
    (fun img ->
      let b = Sff.image_to_bytes img in
      put_str (Bytes.to_string b))
    t.images;
  Buffer.to_bytes buf

let of_bytes b =
  let pos = ref 0 in
  let fail msg = raise (Sff.Corrupt msg) in
  let get_u8 () =
    if !pos >= Bytes.length b then fail "firmware truncated";
    let v = Char.code (Bytes.get b !pos) in
    incr pos;
    v
  in
  let get_u32 () =
    let v = ref 0 in
    for i = 0 to 3 do
      v := !v lor (get_u8 () lsl (8 * i))
    done;
    !v
  in
  let get_str () =
    let len = get_u32 () in
    if !pos + len > Bytes.length b then fail "firmware string truncated";
    let s = Bytes.sub_string b !pos len in
    pos := !pos + len;
    s
  in
  if Bytes.length b < 4 || Bytes.sub_string b 0 4 <> firmware_magic then
    fail "bad firmware magic";
  pos := 4;
  let device = get_str () in
  let os_version = get_str () in
  let security_patch = get_str () in
  let n = get_u32 () in
  (* each image costs at least its 4-byte length prefix: cap the count
     against the remaining bytes so a corrupted header cannot force a
     huge allocation *)
  if n * 4 > Bytes.length b - !pos then fail "implausible firmware image count";
  let images =
    Array.init n (fun _ -> Sff.image_of_bytes (Bytes.of_string (get_str ())))
  in
  { device; os_version; security_patch; images }

let of_bytes_result b =
  match of_bytes b with
  | fw -> Ok fw
  | exception Sff.Corrupt msg ->
    Error (Robust.Fault.Malformed_image { site = "loader.decode"; detail = msg })
  | exception Robust.Fault.Fault f -> Error f
  | exception e ->
    Error
      (Robust.Fault.Malformed_image
         { site = "loader.decode"; detail = Printexc.to_string e })

let write path t =
  let oc = open_out_bin path in
  (try output_bytes oc (to_bytes t)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let read path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  (try really_input ic b 0 len
   with e ->
     close_in_noerr ic;
     raise e);
  close_in ic;
  of_bytes b

let read_result path =
  match read path with
  | fw -> Ok fw
  | exception Sff.Corrupt msg ->
    Error (Robust.Fault.Malformed_image { site = "loader.decode"; detail = msg })
  | exception Robust.Fault.Fault f -> Error f
  | exception e ->
    Error
      (Robust.Fault.Malformed_image
         { site = "loader.decode"; detail = Printexc.to_string e })
