(** Wall-clock timing for stage/benchmark measurements.

    [Sys.time] returns processor time, which counts every domain's
    cycles and so over-reports elapsed time under parallel execution;
    these helpers report real elapsed seconds. *)

val now : unit -> float
(** Current wall-clock time in seconds (epoch-based). *)

val since : float -> float
(** [since t0] is the elapsed wall-clock seconds from [t0 = now ()]. *)

val elapsed_ns : unit -> int
(** Wall-clock nanoseconds since this module was initialised.  An OCaml
    [int], so it round-trips exactly through textual formats (trace
    timestamps use this rather than float epoch seconds). *)
