(* Wall-clock timing.  [Sys.time] measures CPU time, which over-reports
   under parallel execution (every domain's cycles add up); stage
   timings must use elapsed real time instead. *)

let now () = Unix.gettimeofday ()

let since start = now () -. start
