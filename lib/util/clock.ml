(* Wall-clock timing.  [Sys.time] measures CPU time, which over-reports
   under parallel execution (every domain's cycles add up); stage
   timings must use elapsed real time instead. *)

let now () = Unix.gettimeofday ()

let since start = now () -. start

(* Process-relative integer timestamps for trace events.  Anchoring at
   module initialisation keeps the value well inside an OCaml int (63
   bits of nanoseconds is ~292 years) and makes it round-trip exactly
   through decimal JSON, which float epoch seconds would not. *)
let anchor = now ()

let elapsed_ns () = int_of_float ((now () -. anchor) *. 1e9)
